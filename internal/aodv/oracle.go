package aodv

import (
	"math"

	"probquorum/internal/netstack"
	"probquorum/internal/sim"
)

// Router is the multihop unicast service the quorum layer consumes. Two
// implementations exist: Routing (AODV, with discovery floods and control
// overhead) and Oracle (zero-overhead shortest paths computed from the
// instantaneous neighbor graph). Swapping them isolates the paper's "cost
// of establishing the routes" from the "cost of using the routes"
// (Section 4.1).
type Router interface {
	// Send routes inner from src to dst; done (may be nil) reports
	// whether the packet was handed off toward a live route.
	Send(src, dst int, inner *netstack.Packet, done func(ok bool))
	// SendScoped is Send limited to maxTTL hops; it fails fast when the
	// destination is farther.
	SendScoped(src, dst int, inner *netstack.Packet, maxTTL int, done func(ok bool))
	// AddTransitTap observes routed packets at transit nodes (RANDOM-OPT).
	AddTransitTap(id int, tap TransitTap)
	// HasRoute reports whether src can currently reach dst.
	HasRoute(src, dst int) bool
}

var (
	_ Router = (*Routing)(nil)
	_ Router = (*Oracle)(nil)
)

// Oracle is an idealized routing service: each send follows a hop-by-hop
// shortest path computed on the current neighbor graph, with no control
// traffic. Use it as a baseline that isolates quorum-protocol costs from
// route-discovery costs.
type Oracle struct {
	net    *netstack.Network
	engine *sim.Engine
	taps   [][]TransitTap

	// BFS scratch, reused across nextHop calls so steady-state routing does
	// not allocate: visited is a stamp array (visited[i] == stamp means
	// "seen in the current traversal"), parent/queue/depths are the
	// traversal state. The traversal order is exactly the previous
	// allocate-per-call implementation's, so results are bit-identical.
	visited []int32
	stamp   int32
	parent  []int32
	queue   []int32
	depths  []int32

	// cache is the opt-in per-destination route-tree cache with sharded
	// parallel prefetch (routecache.go); nil unless EnableRouteCache ran.
	cache *routeCache

	// DataDrops counts packets dropped because no path existed or a hop
	// failed.
	DataDrops uint64
}

// oracleMsg is the hop-by-hop envelope (TTL carried on the packet).
type oracleMsg struct {
	Inner *netstack.Packet
}

// oracleHandler adapts netstack dispatch.
type oracleHandler struct{ o *Oracle }

// HandlePacket implements netstack.Handler.
func (h *oracleHandler) HandlePacket(n *netstack.Node, pkt *netstack.Packet, from int) {
	h.o.handleData(n, pkt, from)
}

// NewOracle installs the oracle router on all nodes of net.
func NewOracle(net *netstack.Network) *Oracle {
	o := &Oracle{
		net:    net,
		engine: net.Engine(),
		taps:   make([][]TransitTap, net.N()),
	}
	h := &oracleHandler{o: o}
	for id := 0; id < net.N(); id++ {
		net.Node(id).Register(netstack.ProtoRouted, h)
	}
	return o
}

// AddTransitTap implements Router.
func (o *Oracle) AddTransitTap(id int, tap TransitTap) {
	o.taps[id] = append(o.taps[id], tap)
}

// HasRoute implements Router.
func (o *Oracle) HasRoute(src, dst int) bool {
	_, ok := o.nextHop(src, dst, 0)
	return ok
}

// Send implements Router.
func (o *Oracle) Send(src, dst int, inner *netstack.Packet, done func(ok bool)) {
	o.send(src, dst, inner, 0, done)
}

// SendScoped implements Router.
func (o *Oracle) SendScoped(src, dst int, inner *netstack.Packet, maxTTL int, done func(ok bool)) {
	if maxTTL <= 0 {
		maxTTL = 1
	}
	o.send(src, dst, inner, maxTTL, done)
}

func (o *Oracle) send(src, dst int, inner *netstack.Packet, maxTTL int, done func(ok bool)) {
	node := o.net.Node(src)
	if !node.Alive() {
		o.fail(done)
		return
	}
	if src == dst {
		node.DeliverLocal(inner, src)
		if done != nil {
			done(true)
		}
		return
	}
	next, ok := o.nextHop(src, dst, maxTTL)
	if !ok {
		o.fail(done)
		return
	}
	ttl := maxTTL
	if ttl == 0 {
		ttl = o.net.N() // effectively unbounded
	}
	pkt := &netstack.Packet{
		Proto: netstack.ProtoRouted, Src: src, Dst: dst,
		TTL: ttl, Bytes: inner.Bytes + dataEnvelopeBytes, Hops: inner.Hops,
		Payload: &oracleMsg{Inner: inner},
	}
	node.SendOneHop(next, pkt, func(ok bool) {
		if done != nil {
			done(ok)
		}
		if !ok {
			o.DataDrops++
		}
	})
}

func (o *Oracle) fail(done func(bool)) {
	o.DataDrops++
	if done != nil {
		done(false)
	}
}

// handleData forwards a routed envelope toward its destination.
func (o *Oracle) handleData(n *netstack.Node, pkt *netstack.Packet, from int) {
	env, ok := pkt.Payload.(*oracleMsg)
	if !ok {
		return
	}
	if pkt.Dst == n.ID() {
		inner := env.Inner.Clone()
		inner.Hops = pkt.Hops + 1
		n.DeliverLocal(inner, from)
		return
	}
	for _, tap := range o.taps[n.ID()] {
		inner := env.Inner.Clone()
		inner.Hops = pkt.Hops + 1
		if tap(n, inner) {
			return
		}
	}
	if pkt.TTL <= 1 {
		o.DataDrops++
		return
	}
	next, found := o.nextHop(n.ID(), pkt.Dst, pkt.TTL-1)
	if !found {
		o.DataDrops++
		return
	}
	fwd := pkt.Clone()
	fwd.TTL--
	fwd.Hops++
	n.SendOneHop(next, fwd, func(ok bool) {
		if !ok {
			o.DataDrops++
		}
	})
}

// nextHop returns the first hop of a shortest path from src to dst within
// maxTTL hops (0 = unbounded): a forward BFS over the live neighbor graph
// using reused stamped scratch, visiting nodes in exactly the order the
// original allocate-per-call implementation did (same queue discipline, same
// ascending-neighbor expansion), so tie-breaking — and every recorded run —
// is unchanged while steady-state routing no longer allocates.
//
// When the route cache is enabled, every query is answered from the
// per-destination next-hop trees instead (routecache.go): unbounded queries
// read next[src] directly, and scoped queries walk the tree — tree paths
// are shortest paths, so "dst within k hops" is decided in at most k steps.
// The latter is what keeps per-hop forwarding off the BFS entirely: routed
// packets carry a finite TTL, so without it every intermediate hop of an
// "unbounded" send would fall through to a graph-sized traversal.
func (o *Oracle) nextHop(src, dst int, maxTTL int) (int, bool) {
	if src == dst {
		return src, true
	}
	if o.cache != nil {
		return o.cache.nextHop(src, dst, maxTTL)
	}
	n := o.net.N()
	if len(o.visited) != n {
		o.visited = make([]int32, n)
		o.parent = make([]int32, n)
		o.stamp = 0
	}
	if o.stamp == math.MaxInt32 {
		for i := range o.visited {
			o.visited[i] = 0
		}
		o.stamp = 0
	}
	o.stamp++
	stamp := o.stamp
	o.visited[src] = stamp
	o.parent[src] = -1
	queue, depths := o.queue[:0], o.depths[:0]
	queue = append(queue, int32(src))
	depths = append(depths, 0)
	for head := 0; head < len(queue); head++ {
		cur, depth := int(queue[head]), int(depths[head])
		if maxTTL > 0 && depth >= maxTTL {
			continue
		}
		for _, nb := range o.net.Neighbors(cur) {
			if o.visited[nb] == stamp {
				continue
			}
			o.visited[nb] = stamp
			o.parent[nb] = int32(cur)
			if nb == dst {
				// Walk back to find the first hop.
				at := nb
				for int(o.parent[at]) != src {
					at = int(o.parent[at])
				}
				o.queue, o.depths = queue, depths
				return at, true
			}
			queue = append(queue, int32(nb))
			depths = append(depths, int32(depth+1))
		}
	}
	o.queue, o.depths = queue, depths
	return 0, false
}
