package aodv

import (
	"math/rand"
	"testing"

	"probquorum/internal/geom"
	"probquorum/internal/mobility"
	"probquorum/internal/netstack"
	"probquorum/internal/sim"
)

// oracleWorld builds a static topology with an Oracle router on the ideal
// stack, optionally with the route cache enabled.
func oracleWorld(pts []geom.Point, side float64, cached bool) (*sim.Engine, *netstack.Network, *Oracle) {
	e := sim.NewEngine(1)
	net := netstack.New(e, netstack.Config{
		N: len(pts), Side: side, Mobility: mobility.NewStatic(pts), Stack: netstack.StackIdeal,
	})
	o := NewOracle(net)
	if cached {
		o.EnableRouteCache(RouteCacheConfig{})
	}
	return e, net, o
}

// TestRouteCacheScopedMatchesBFS compares the cached scoped next-hop answers
// against the exact bounded BFS on a random static topology: for every
// (src, dst, ttl) the reachability verdict must agree (tree paths are
// shortest paths, so "within k hops" is the same predicate on both sides),
// and any hop the cache returns must be a strictly-closer live neighbor.
func TestRouteCacheScopedMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, side = 40, 900.0
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	_, _, plain := oracleWorld(pts, side, false)
	_, _, cached := oracleWorld(pts, side, true)

	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			for ttl := 0; ttl <= 6; ttl++ {
				_, wantOK := plain.nextHop(src, dst, ttl)
				hop, gotOK := cached.nextHop(src, dst, ttl)
				if gotOK != wantOK {
					t.Fatalf("src=%d dst=%d ttl=%d: cached reachable=%v, BFS says %v", src, dst, ttl, gotOK, wantOK)
				}
				if !gotOK {
					continue
				}
				// The cached hop must make strict progress: dst reachable
				// from hop within ttl-1 (unbounded stays unbounded).
				rest := 0
				if ttl > 0 {
					rest = ttl - 1
				}
				if hop != dst {
					if _, ok := plain.nextHop(hop, dst, rest); !ok {
						t.Fatalf("src=%d dst=%d ttl=%d: cached hop %d cannot reach dst within %d", src, dst, ttl, hop, rest)
					}
				}
			}
		}
	}
}

// TestOracleRouteCacheScopedDelivery re-runs the scoped/unreachable oracle
// scenario with the cache enabled: TTL-bounded sends must still fail beyond
// their scope, succeed within it, and unreachable destinations must drop.
func TestOracleRouteCacheScopedDelivery(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 300, Y: 0}, {X: 450, Y: 0}, {X: 5000, Y: 0}}
	e, net, o := oracleWorld(pts, 6000, true)
	s := &sink{}
	net.Node(3).Register(testProto, s)
	var beyond, within, far *bool
	e.Schedule(0, func() {
		o.SendScoped(0, 3, innerPkt(0, 3), 2, func(ok bool) { beyond = &ok }) // 3 hops away
		o.Send(0, 4, innerPkt(0, 4), func(ok bool) { far = &ok })             // disconnected
	})
	e.Schedule(1, func() {
		o.SendScoped(0, 3, innerPkt(0, 3), 3, func(ok bool) { within = &ok }) // exactly in scope
	})
	e.Run(5)
	if beyond == nil || *beyond {
		t.Fatal("scoped send beyond TTL should fail with the cache on")
	}
	if far == nil || *far {
		t.Fatal("send to a disconnected node should fail with the cache on")
	}
	if within == nil || !*within {
		t.Fatal("scoped send within TTL should hand off with the cache on")
	}
	if len(s.pkts) != 1 || s.pkts[0].Hops != 3 {
		t.Fatalf("cached scoped delivery: %d pkts", len(s.pkts))
	}
	if o.DataDrops == 0 {
		t.Fatal("drops not counted")
	}
}
