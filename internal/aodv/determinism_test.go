package aodv

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"probquorum/internal/sim"
)

// TestDiscoveryResolutionDeterministic runs the same routed workload twice
// — interleaved sends from several origins, shared discoveries, and sends
// to a dead destination so failures mix with successes — and asserts the
// per-op resolution sequence (which op resolved, with what outcome, at
// what simulated time) is identical. This is the regression gate for
// finishDiscovery's ordering: resolution must follow d.pending's
// insertion order, never map iteration order.
func TestDiscoveryResolutionDeterministic(t *testing.T) {
	workload := func() []string {
		e := sim.NewEngine(7)
		net, r, _ := lineWorld(e, 8, 150)
		net.Fail(7) // sends to 7 fail after the ring search exhausts
		var seq []string
		for i := 0; i < 12; i++ {
			i := i
			src := i % 3
			dst := 5 + i%3
			e.Schedule(float64(i)*0.01, func() {
				r.Send(src, dst, innerPkt(src, dst), func(ok bool) {
					seq = append(seq, fmt.Sprintf("op%d->%d ok=%v t=%.9f", i, dst, ok, e.Now()))
				})
			})
		}
		e.Run(60)
		return seq
	}

	first := workload()
	second := workload()
	if len(first) != 12 {
		t.Fatalf("got %d resolutions, want 12: %v", len(first), first)
	}
	okSeen, failSeen := false, false
	for _, s := range first {
		okSeen = okSeen || strings.Contains(s, "ok=true")
		failSeen = failSeen || strings.Contains(s, "ok=false")
	}
	if !okSeen || !failSeen {
		t.Fatalf("workload should mix successes and failures: %v", first)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("resolution sequences differ across identical runs:\n run1: %v\n run2: %v", first, second)
	}
}

// TestResetNodeTeardownOrder crashes four destinations so their
// discoveries stay pending, resets the origin mid-search, and asserts the
// buffered packets fail in ascending destination order — the sorted
// teardown of the discovery map.
func TestResetNodeTeardownOrder(t *testing.T) {
	e := sim.NewEngine(3)
	net, r, _ := lineWorld(e, 10, 150)
	for _, id := range []int{6, 7, 8, 9} {
		net.Fail(id)
	}
	var failed []int
	// Enqueue in deliberately unsorted destination order.
	e.Schedule(0, func() {
		for _, dst := range []int{9, 6, 8, 7} {
			dst := dst
			r.Send(0, dst, innerPkt(0, dst), func(ok bool) {
				if ok {
					t.Errorf("send to dead node %d reported success", dst)
				}
				failed = append(failed, dst)
			})
		}
	})
	e.Schedule(0.05, func() { r.ResetNode(0) })
	e.Run(1)
	want := []int{6, 7, 8, 9}
	if !reflect.DeepEqual(failed, want) {
		t.Errorf("teardown resolution order = %v, want %v", failed, want)
	}
	if n := len(r.nodes[0].disc); n != 0 {
		t.Errorf("discovery map should be empty after reset, has %d entries", n)
	}
}

// TestResetNodeClearsRoutes establishes a route, resets the node, and
// checks the routing table and duplicate-RREQ cache are gone while traffic
// still works afterwards (state rebuilds from scratch).
func TestResetNodeClearsRoutes(t *testing.T) {
	e := sim.NewEngine(5)
	_, r, sinks := lineWorld(e, 6, 150)
	e.Schedule(0, func() { r.Send(0, 5, innerPkt(0, 5), nil) })
	e.Run(10)
	if !r.HasRoute(0, 5) {
		t.Fatal("route should exist before reset")
	}
	r.ResetNode(0)
	if r.HasRoute(0, 5) {
		t.Fatal("route should be gone after reset")
	}
	if n := len(r.nodes[0].seen); n != 0 {
		t.Fatalf("seen cache should be empty after reset, has %d entries", n)
	}
	var redelivered *bool
	e.Schedule(0, func() {
		r.Send(0, 5, innerPkt(0, 5), func(ok bool) { redelivered = &ok })
	})
	e.Run(20)
	if redelivered == nil || !*redelivered {
		t.Fatal("send after reset should rediscover and succeed")
	}
	if len(sinks[5].pkts) != 2 {
		t.Fatalf("destination received %d packets, want 2", len(sinks[5].pkts))
	}
}
