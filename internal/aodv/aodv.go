// Package aodv implements an RFC 3561-style subset of the Ad hoc On-Demand
// Distance Vector routing protocol: expanding-ring route discovery (RREQ
// floods with growing TTL), reverse/forward path setup via RREP, destination
// sequence numbers for loop freedom, route expiry with refresh-on-use, and
// RERR propagation when the MAC reports a broken link.
//
// The paper's simulations use AODV for every multihop unicast (Section 2.4),
// and its results hinge on two AODV behaviours this package reproduces:
// route-discovery floods dominating the cost of RANDOM quorum accesses
// (Fig. 8), and routing-failure notifications reaching the application so it
// can adapt (Section 6.2). A TTL-scoped send supports the paper's
// reply-path local repair, which invokes routing limited to 3 hops.
package aodv

import (
	"sort"

	"probquorum/internal/netstack"
	"probquorum/internal/sim"
)

// Config holds AODV constants. Zero values are replaced by defaults close
// to RFC 3561's, with a longer active-route timeout suiting the paper's
// route-reuse observation.
type Config struct {
	// ActiveRouteTimeout is the route lifetime, refreshed on use.
	ActiveRouteTimeout float64
	// NodeTraversalTime estimates one-hop traversal latency; ring-search
	// timeouts derive from it.
	NodeTraversalTime float64
	// NetDiameter bounds the network diameter in hops (full-TTL floods).
	NetDiameter int
	// TTLStart, TTLIncrement, TTLThreshold parameterize the expanding
	// ring search.
	TTLStart, TTLIncrement, TTLThreshold int
	// RreqRetries is the number of network-wide retries after the ring
	// search escalates to NetDiameter.
	RreqRetries int
	// JitterSecs is the maximum random delay before (re)broadcasting
	// control packets, preventing synchronized collisions (paper: 10 ms).
	JitterSecs float64
	// RetryDataOnLinkBreak makes the origin buffer a data packet whose
	// first hop broke and re-discover once before giving up.
	RetryDataOnLinkBreak bool
}

// DefaultConfig returns the defaults described on Config.
func DefaultConfig() Config {
	return Config{
		ActiveRouteTimeout:   10,
		NodeTraversalTime:    0.04,
		NetDiameter:          35,
		TTLStart:             1,
		TTLIncrement:         2,
		TTLThreshold:         7,
		RreqRetries:          2,
		JitterSecs:           0.010,
		RetryDataOnLinkBreak: true,
	}
}

// Control message sizes in bytes (RFC 3561 formats).
const (
	rreqBytes = 24
	rrepBytes = 20
	rerrBytes = 12
	// dataEnvelopeBytes is the per-hop overhead of the routed-data
	// envelope.
	dataEnvelopeBytes = 4
)

// TransitTap observes routed application packets at nodes they transit
// (not the origin or final destination). Returning true consumes the packet:
// it is not forwarded further. This is the cross-layer hook behind the
// paper's RANDOM-OPT access strategy (Section 4.5).
type TransitTap func(at *netstack.Node, inner *netstack.Packet) bool

// route is a routing-table entry.
type route struct {
	nextHop  int
	hops     int
	seq      uint32
	validSeq bool
	expiry   float64
	valid    bool
}

// outPacket is a data packet waiting for a route or in flight at its origin.
type outPacket struct {
	inner   *netstack.Packet
	dst     int
	done    func(ok bool)
	maxTTL  int // 0: unlimited discovery; >0: single scoped attempt
	retried bool
}

// discovery tracks an in-progress route request at its originator.
type discovery struct {
	ttl         int
	fullRetries int
	timer       *sim.Timer
	pending     []*outPacket
	scoped      bool
}

type rreqKey struct {
	orig int
	id   uint32
}

// nodeState is the per-node AODV state.
type nodeState struct {
	id      int
	seq     uint32
	rreqID  uint32
	routes  map[int]*route
	seen    map[rreqKey]float64
	disc    map[int]*discovery
	taps    []TransitTap
	handler *nodeHandler
}

// Routing runs AODV on every node of a network.
type Routing struct {
	net    *netstack.Network
	cfg    Config
	engine *sim.Engine
	nodes  []*nodeState

	// Discoveries counts route discoveries started (for the harness).
	Discoveries uint64
	// DataDrops counts routed data packets dropped in the network.
	DataDrops uint64
}

// nodeHandler adapts netstack.Handler dispatch to the shared Routing with a
// node id.
type nodeHandler struct {
	r  *Routing
	id int
}

// HandlePacket implements netstack.Handler.
func (h *nodeHandler) HandlePacket(n *netstack.Node, pkt *netstack.Packet, from int) {
	switch pkt.Proto {
	case netstack.ProtoAODV:
		h.r.handleControl(n, pkt, from)
	case netstack.ProtoRouted:
		h.r.handleData(n, pkt, from)
	}
}

// New installs AODV on all nodes of net.
func New(net *netstack.Network, cfg Config) *Routing {
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	r := &Routing{
		net:    net,
		cfg:    cfg,
		engine: net.Engine(),
		nodes:  make([]*nodeState, net.N()),
	}
	for id := 0; id < net.N(); id++ {
		st := &nodeState{
			id:     id,
			routes: make(map[int]*route),
			seen:   make(map[rreqKey]float64),
			disc:   make(map[int]*discovery),
		}
		st.handler = &nodeHandler{r: r, id: id}
		r.nodes[id] = st
		net.Node(id).Register(netstack.ProtoAODV, st.handler)
		net.Node(id).Register(netstack.ProtoRouted, st.handler)
	}
	return r
}

// ResetNode discards node id's AODV state — the routing table, the
// duplicate-RREQ cache, and every in-progress discovery — the state a node
// rebooting after a crash must not retain. Pending discoveries fail (each
// buffered packet's done callback fires with ok=false) in ascending
// destination order: the discovery map's iteration order is randomized, so
// the teardown walks a sorted key snapshot to keep replays bit-identical.
// Sequence numbers survive the reset; RFC 3561 relies on them growing
// monotonically for loop freedom.
func (r *Routing) ResetNode(id int) {
	st := r.nodes[id]
	dsts := make([]int, 0, len(st.disc))
	for dst := range st.disc {
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	for _, dst := range dsts {
		r.finishDiscovery(st, dst, false)
	}
	st.routes = make(map[int]*route)
	st.seen = make(map[rreqKey]float64)
}

// AddTransitTap registers a transit observer at node id.
func (r *Routing) AddTransitTap(id int, tap TransitTap) {
	r.nodes[id].taps = append(r.nodes[id].taps, tap)
}

// HasRoute reports whether src currently holds a valid, unexpired route to
// dst.
func (r *Routing) HasRoute(src, dst int) bool {
	return r.validRoute(r.nodes[src], dst) != nil
}

// Send routes inner from node src to node dst, discovering a route if
// needed. done (may be nil) fires with false if no route could be found (or
// the first hop broke irrecoverably), true once the packet has been handed
// to a route's first hop successfully. End-to-end delivery is confirmed
// only by application replies, as in a real stack.
func (r *Routing) Send(src, dst int, inner *netstack.Packet, done func(ok bool)) {
	r.send(src, dst, inner, 0, done)
}

// SendScoped is Send with discovery limited to a single RREQ of the given
// TTL — the paper's TTL-3 local repair. It fails fast if the destination is
// farther than maxTTL hops.
func (r *Routing) SendScoped(src, dst int, inner *netstack.Packet, maxTTL int, done func(ok bool)) {
	if maxTTL <= 0 {
		maxTTL = 1
	}
	r.send(src, dst, inner, maxTTL, done)
}

func (r *Routing) send(src, dst int, inner *netstack.Packet, maxTTL int, done func(ok bool)) {
	st := r.nodes[src]
	node := r.net.Node(src)
	if !node.Alive() {
		if done != nil {
			done(false)
		}
		return
	}
	if src == dst {
		node.DeliverLocal(inner, src)
		if done != nil {
			done(true)
		}
		return
	}
	op := &outPacket{inner: inner, dst: dst, done: done, maxTTL: maxTTL}
	if rt := r.validRoute(st, dst); rt != nil {
		r.transmitData(st, op, rt)
		return
	}
	r.enqueueDiscovery(st, op)
}

// validRoute returns the live route entry for dst, if any.
func (r *Routing) validRoute(st *nodeState, dst int) *route {
	rt := st.routes[dst]
	if rt == nil || !rt.valid || rt.expiry < r.engine.Now() {
		return nil
	}
	return rt
}

// touchRoute refreshes the lifetime of the route to dst (and is a no-op
// otherwise), per RFC 3561's refresh-on-use.
func (r *Routing) touchRoute(st *nodeState, dst int) {
	if rt := st.routes[dst]; rt != nil && rt.valid {
		exp := r.engine.Now() + r.cfg.ActiveRouteTimeout
		if exp > rt.expiry {
			rt.expiry = exp
		}
	}
}

// updateRoute installs or improves a route to dst via nextHop. Following
// RFC 3561 §6.2, an entry is replaced when the new sequence number is
// fresher, equal with fewer hops, or the old entry is invalid/unknown.
func (r *Routing) updateRoute(st *nodeState, dst, nextHop, hops int, seq uint32, hasSeq bool) {
	now := r.engine.Now()
	rt := st.routes[dst]
	if rt == nil {
		rt = &route{}
		st.routes[dst] = rt
	}
	accept := !rt.valid || rt.expiry < now ||
		(hasSeq && rt.validSeq && int32(seq-rt.seq) > 0) ||
		(hasSeq && !rt.validSeq) ||
		((!hasSeq || (rt.validSeq && seq == rt.seq)) && hops < rt.hops)
	if !accept {
		return
	}
	rt.nextHop = nextHop
	rt.hops = hops
	if hasSeq {
		rt.seq = seq
		rt.validSeq = true
	}
	rt.valid = true
	rt.expiry = now + r.cfg.ActiveRouteTimeout
}

// jitter returns a small random broadcast delay.
func (r *Routing) jitter() float64 {
	return r.engine.Rand().Float64() * r.cfg.JitterSecs
}
