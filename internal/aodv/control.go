package aodv

import (
	"sort"

	"probquorum/internal/netstack"
	"probquorum/internal/sim"
)

// rreqMsg is a route request, flooded with limited TTL.
type rreqMsg struct {
	ID       uint32
	Orig     int
	OrigSeq  uint32
	Dst      int
	DstSeq   uint32
	HasDSeq  bool
	HopCount int
}

// rrepMsg is a route reply, unicast hop-by-hop along the reverse path.
type rrepMsg struct {
	Orig     int
	Dst      int
	DstSeq   uint32
	HopCount int
}

// rerrMsg announces broken destinations, broadcast one hop at a time.
type rerrMsg struct {
	Unreachable []unreachable
}

type unreachable struct {
	dst int
	seq uint32
}

// enqueueDiscovery buffers op and starts (or joins) a route discovery for
// its destination.
func (r *Routing) enqueueDiscovery(st *nodeState, op *outPacket) {
	d := st.disc[op.dst]
	if d != nil {
		d.pending = append(d.pending, op)
		return
	}
	ttl := r.cfg.TTLStart
	if op.maxTTL > 0 {
		ttl = op.maxTTL
	}
	d = &discovery{ttl: ttl, pending: []*outPacket{op}, scoped: op.maxTTL > 0}
	dst := op.dst
	d.timer = sim.NewTimer(r.engine, func() { r.discoveryTimeout(st, dst) })
	st.disc[dst] = d
	r.broadcastRREQ(st, dst, d)
}

// broadcastRREQ sends one ring of the expanding search.
func (r *Routing) broadcastRREQ(st *nodeState, dst int, d *discovery) {
	r.Discoveries++
	st.seq++
	st.rreqID++
	req := &rreqMsg{
		ID:      st.rreqID,
		Orig:    st.id,
		OrigSeq: st.seq,
		Dst:     dst,
	}
	if rt := st.routes[dst]; rt != nil && rt.validSeq {
		req.DstSeq = rt.seq
		req.HasDSeq = true
	}
	// Suppress our own re-reception of this request.
	st.seen[rreqKey{st.id, req.ID}] = r.engine.Now()
	pkt := &netstack.Packet{
		Proto: netstack.ProtoAODV, Src: st.id, Dst: netstack.Broadcast,
		TTL: d.ttl, Bytes: rreqBytes, Payload: req,
	}
	node := r.net.Node(st.id)
	r.engine.Schedule(r.jitter(), func() { node.BroadcastOneHop(pkt, nil) })
	// Ring traversal timeout: out and back at NodeTraversalTime per hop,
	// with RFC 3561's two-hop safety margin.
	d.timer.Reset(2 * r.cfg.NodeTraversalTime * float64(d.ttl+2))
}

// discoveryTimeout escalates the ring search or fails the pending packets.
func (r *Routing) discoveryTimeout(st *nodeState, dst int) {
	d := st.disc[dst]
	if d == nil {
		return
	}
	if rt := r.validRoute(st, dst); rt != nil {
		r.finishDiscovery(st, dst, true)
		return
	}
	if d.scoped {
		r.finishDiscovery(st, dst, false)
		return
	}
	switch {
	case d.ttl < r.cfg.TTLThreshold:
		d.ttl += r.cfg.TTLIncrement
		if d.ttl > r.cfg.TTLThreshold {
			d.ttl = r.cfg.TTLThreshold
		}
	case d.ttl < r.cfg.NetDiameter:
		d.ttl = r.cfg.NetDiameter
	default:
		d.fullRetries++
		if d.fullRetries > r.cfg.RreqRetries {
			r.finishDiscovery(st, dst, false)
			return
		}
	}
	r.broadcastRREQ(st, dst, d)
}

// finishDiscovery resolves all packets waiting on dst and tears the
// discovery down. Packets resolve in d.pending's insertion order — a
// slice, never a map — so the per-op callback sequence is identical
// across replays. The discovery is unhooked from st.disc before any
// callback runs, so a done callback may immediately start a fresh
// discovery for the same destination without touching this one's state.
func (r *Routing) finishDiscovery(st *nodeState, dst int, ok bool) {
	d := st.disc[dst]
	if d == nil {
		return
	}
	d.timer.Cancel()
	delete(st.disc, dst)
	pending := d.pending
	d.pending = nil
	for _, op := range pending {
		if !ok {
			if op.done != nil {
				op.done(false)
			}
			continue
		}
		rt := r.validRoute(st, dst)
		if rt == nil {
			if op.done != nil {
				op.done(false)
			}
			continue
		}
		r.transmitData(st, op, rt)
	}
}

// handleControl processes RREQ/RREP/RERR at node n.
func (r *Routing) handleControl(n *netstack.Node, pkt *netstack.Packet, from int) {
	st := r.nodes[n.ID()]
	switch msg := pkt.Payload.(type) {
	case *rreqMsg:
		r.handleRREQ(n, st, pkt, msg, from)
	case *rrepMsg:
		r.handleRREP(n, st, msg, from)
	case *rerrMsg:
		r.handleRERR(n, st, msg, from)
	}
}

func (r *Routing) handleRREQ(n *netstack.Node, st *nodeState, pkt *netstack.Packet, req *rreqMsg, from int) {
	key := rreqKey{req.Orig, req.ID}
	if _, dup := st.seen[key]; dup {
		return
	}
	st.seen[key] = r.engine.Now()
	// Reverse route to the previous hop and to the originator.
	r.updateRoute(st, from, from, 1, 0, false)
	r.updateRoute(st, req.Orig, from, req.HopCount+1, req.OrigSeq, true)

	if st.id == req.Dst {
		// RFC 3561 §6.6.1: the destination bumps its sequence number to
		// at least the requested one.
		if req.HasDSeq && int32(req.DstSeq-st.seq) > 0 {
			st.seq = req.DstSeq
		}
		st.seq++
		r.sendRREP(st, &rrepMsg{Orig: req.Orig, Dst: st.id, DstSeq: st.seq, HopCount: 0})
		return
	}
	// Intermediate node with a fresh-enough route may answer on the
	// destination's behalf.
	if rt := r.validRoute(st, req.Dst); rt != nil && rt.validSeq &&
		(!req.HasDSeq || int32(rt.seq-req.DstSeq) >= 0) {
		r.sendRREP(st, &rrepMsg{Orig: req.Orig, Dst: req.Dst, DstSeq: rt.seq, HopCount: rt.hops})
		return
	}
	if pkt.TTL <= 1 {
		return
	}
	fwd := &rreqMsg{
		ID: req.ID, Orig: req.Orig, OrigSeq: req.OrigSeq,
		Dst: req.Dst, DstSeq: req.DstSeq, HasDSeq: req.HasDSeq,
		HopCount: req.HopCount + 1,
	}
	out := &netstack.Packet{
		Proto: netstack.ProtoAODV, Src: st.id, Dst: netstack.Broadcast,
		TTL: pkt.TTL - 1, Bytes: rreqBytes, Payload: fwd, Hops: pkt.Hops + 1,
	}
	r.engine.Schedule(r.jitter(), func() { n.BroadcastOneHop(out, nil) })
}

// sendRREP unicasts a reply from st toward the request originator along the
// reverse route.
func (r *Routing) sendRREP(st *nodeState, rep *rrepMsg) {
	if st.id == rep.Orig {
		return // we are the originator; route is already installed
	}
	rt := r.validRoute(st, rep.Orig)
	if rt == nil {
		return // reverse route evaporated; the ring search will retry
	}
	node := r.net.Node(st.id)
	pkt := &netstack.Packet{
		Proto: netstack.ProtoAODV, Src: st.id, Dst: rep.Orig,
		Bytes: rrepBytes, Payload: rep,
	}
	next := rt.nextHop
	node.SendOneHop(next, pkt, func(ok bool) {
		if !ok {
			r.linkBroken(st, next)
		}
	})
}

func (r *Routing) handleRREP(n *netstack.Node, st *nodeState, rep *rrepMsg, from int) {
	// Forward route to the replying destination.
	r.updateRoute(st, from, from, 1, 0, false)
	r.updateRoute(st, rep.Dst, from, rep.HopCount+1, rep.DstSeq, true)
	if st.id == rep.Orig {
		if d := st.disc[rep.Dst]; d != nil {
			r.finishDiscovery(st, rep.Dst, true)
		}
		return
	}
	fwd := &rrepMsg{Orig: rep.Orig, Dst: rep.Dst, DstSeq: rep.DstSeq, HopCount: rep.HopCount + 1}
	r.sendRREP(st, fwd)
}

// linkBroken reacts to a MAC-level delivery failure to neighbor next:
// invalidate all routes through it and advertise the loss.
func (r *Routing) linkBroken(st *nodeState, next int) {
	var lost []unreachable
	for dst, rt := range st.routes {
		if rt.valid && rt.nextHop == next {
			rt.valid = false
			rt.seq++ // RFC 3561 §6.11: increment seq of lost routes
			lost = append(lost, unreachable{dst: dst, seq: rt.seq})
		}
	}
	if len(lost) == 0 {
		return
	}
	// The routing-table map yields lost destinations in randomized order;
	// sort so the RERR payload is identical across replays.
	sort.Slice(lost, func(i, j int) bool { return lost[i].dst < lost[j].dst })
	node := r.net.Node(st.id)
	pkt := &netstack.Packet{
		Proto: netstack.ProtoAODV, Src: st.id, Dst: netstack.Broadcast,
		TTL: 1, Bytes: rerrBytes, Payload: &rerrMsg{Unreachable: lost},
	}
	r.engine.Schedule(r.jitter(), func() { node.BroadcastOneHop(pkt, nil) })
}

func (r *Routing) handleRERR(n *netstack.Node, st *nodeState, msg *rerrMsg, from int) {
	var propagate []unreachable
	for _, u := range msg.Unreachable {
		rt := st.routes[u.dst]
		if rt != nil && rt.valid && rt.nextHop == from {
			rt.valid = false
			rt.seq = u.seq
			propagate = append(propagate, u)
		}
	}
	if len(propagate) == 0 {
		return
	}
	pkt := &netstack.Packet{
		Proto: netstack.ProtoAODV, Src: st.id, Dst: netstack.Broadcast,
		TTL: 1, Bytes: rerrBytes, Payload: &rerrMsg{Unreachable: propagate},
	}
	r.engine.Schedule(r.jitter(), func() { n.BroadcastOneHop(pkt, nil) })
}
