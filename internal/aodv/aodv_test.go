package aodv

import (
	"testing"

	"probquorum/internal/geom"
	"probquorum/internal/mobility"
	"probquorum/internal/netstack"
	"probquorum/internal/sim"
)

const testProto netstack.ProtocolID = 50

type sink struct {
	pkts []*netstack.Packet
	from []int
}

func (s *sink) HandlePacket(_ *netstack.Node, pkt *netstack.Packet, from int) {
	s.pkts = append(s.pkts, pkt)
	s.from = append(s.from, from)
}

// lineWorld builds a static line of n nodes gap meters apart with AODV on
// the ideal stack, and a sink for testProto at every node.
func lineWorld(e *sim.Engine, n int, gap float64) (*netstack.Network, *Routing, []*sink) {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * gap, Y: 0}
	}
	net := netstack.New(e, netstack.Config{
		N: n, Side: float64(n)*gap + 1, Mobility: mobility.NewStatic(pts),
		Stack: netstack.StackIdeal,
	})
	r := New(net, Config{})
	sinks := make([]*sink, n)
	for i := range sinks {
		sinks[i] = &sink{}
		net.Node(i).Register(testProto, sinks[i])
	}
	return net, r, sinks
}

func innerPkt(src, dst int) *netstack.Packet {
	return &netstack.Packet{Proto: testProto, Src: src, Dst: dst, Bytes: 512, Payload: "data"}
}

func TestMultihopDelivery(t *testing.T) {
	e := sim.NewEngine(1)
	_, r, sinks := lineWorld(e, 6, 150) // 5 hops end to end
	var okResult *bool
	e.Schedule(0, func() {
		r.Send(0, 5, innerPkt(0, 5), func(ok bool) { okResult = &ok })
	})
	e.Run(10)
	if len(sinks[5].pkts) != 1 {
		t.Fatalf("destination received %d packets, want 1", len(sinks[5].pkts))
	}
	if got := sinks[5].pkts[0].Hops; got != 5 {
		t.Fatalf("delivered packet Hops = %d, want 5", got)
	}
	if okResult == nil || !*okResult {
		t.Fatal("send callback should report success")
	}
	if !r.HasRoute(0, 5) {
		t.Fatal("origin should hold a route after delivery")
	}
	// Intermediate sinks must NOT see the routed payload.
	for i := 1; i <= 4; i++ {
		if len(sinks[i].pkts) != 0 {
			t.Fatalf("intermediate node %d received the app payload", i)
		}
	}
}

func TestSelfDelivery(t *testing.T) {
	e := sim.NewEngine(1)
	_, r, sinks := lineWorld(e, 2, 150)
	e.Schedule(0, func() { r.Send(0, 0, innerPkt(0, 0), nil) })
	e.Run(1)
	if len(sinks[0].pkts) != 1 {
		t.Fatal("self-addressed packet not delivered locally")
	}
}

func TestExpandingRing(t *testing.T) {
	e := sim.NewEngine(1)
	_, r, sinks := lineWorld(e, 8, 150) // 7 hops away: needs ring escalation
	e.Schedule(0, func() { r.Send(0, 7, innerPkt(0, 7), nil) })
	e.Run(20)
	if len(sinks[7].pkts) != 1 {
		t.Fatal("far destination not reached")
	}
	// TTL start 1 cannot reach 7 hops: at least two rings must have run.
	if r.Discoveries < 2 {
		t.Fatalf("Discoveries = %d, want ≥ 2 (expanding ring)", r.Discoveries)
	}
}

func TestRouteReuseAvoidsRediscovery(t *testing.T) {
	e := sim.NewEngine(1)
	net, r, sinks := lineWorld(e, 5, 150)
	e.Schedule(0, func() { r.Send(0, 4, innerPkt(0, 4), nil) })
	e.Run(10)
	discoveriesAfterFirst := r.Discoveries
	routingAfterFirst := net.Stats().Get(netstack.CtrRoutingMsgs)
	e.Schedule(0, func() { r.Send(0, 4, innerPkt(0, 4), nil) })
	e.Run(20)
	if len(sinks[4].pkts) != 2 {
		t.Fatalf("destination received %d packets, want 2", len(sinks[4].pkts))
	}
	if r.Discoveries != discoveriesAfterFirst {
		t.Fatal("second send re-discovered despite a cached route")
	}
	if net.Stats().Get(netstack.CtrRoutingMsgs) != routingAfterFirst {
		t.Fatal("second send generated routing overhead")
	}
}

func TestUnreachableDestinationFails(t *testing.T) {
	e := sim.NewEngine(1)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 5000, Y: 0}}
	net := netstack.New(e, netstack.Config{
		N: 3, Side: 6000, Mobility: mobility.NewStatic(pts), Stack: netstack.StackIdeal,
	})
	r := New(net, Config{})
	var okResult *bool
	e.Schedule(0, func() {
		r.Send(0, 2, innerPkt(0, 2), func(ok bool) { okResult = &ok })
	})
	e.Run(60)
	if okResult == nil {
		t.Fatal("no routing notification for unreachable destination")
	}
	if *okResult {
		t.Fatal("send to unreachable destination reported success")
	}
}

func TestPendingPacketsShareDiscovery(t *testing.T) {
	e := sim.NewEngine(1)
	_, r, sinks := lineWorld(e, 4, 150)
	e.Schedule(0, func() {
		r.Send(0, 3, innerPkt(0, 3), nil)
		r.Send(0, 3, innerPkt(0, 3), nil)
		r.Send(0, 3, innerPkt(0, 3), nil)
	})
	e.Run(10)
	if len(sinks[3].pkts) != 3 {
		t.Fatalf("destination received %d packets, want 3", len(sinks[3].pkts))
	}
}

func TestScopedSendWithinScope(t *testing.T) {
	e := sim.NewEngine(1)
	_, r, sinks := lineWorld(e, 4, 150)
	var okResult *bool
	e.Schedule(0, func() {
		r.SendScoped(0, 2, innerPkt(0, 2), 3, func(ok bool) { okResult = &ok })
	})
	e.Run(10)
	if len(sinks[2].pkts) != 1 {
		t.Fatal("scoped send within range failed")
	}
	if okResult == nil || !*okResult {
		t.Fatal("scoped send should succeed")
	}
}

func TestScopedSendBeyondScopeFailsFast(t *testing.T) {
	e := sim.NewEngine(1)
	_, r, sinks := lineWorld(e, 8, 150)
	var okResult *bool
	e.Schedule(0, func() {
		r.SendScoped(0, 7, innerPkt(0, 7), 3, func(ok bool) { okResult = &ok })
	})
	e.Run(30)
	if okResult == nil {
		t.Fatal("scoped send gave no result")
	}
	if *okResult {
		t.Fatal("scoped send beyond TTL should fail")
	}
	if len(sinks[7].pkts) != 0 {
		t.Fatal("packet escaped the TTL scope")
	}
	// A scoped discovery must not escalate to a full flood.
	if r.Discoveries != 1 {
		t.Fatalf("Discoveries = %d, want 1 (no escalation)", r.Discoveries)
	}
}

func TestTransitTapObservesAndConsumes(t *testing.T) {
	e := sim.NewEngine(1)
	_, r, sinks := lineWorld(e, 5, 150)
	var seen []int
	r.AddTransitTap(2, func(at *netstack.Node, inner *netstack.Packet) bool {
		seen = append(seen, at.ID())
		return true // consume
	})
	e.Schedule(0, func() { r.Send(0, 4, innerPkt(0, 4), nil) })
	e.Run(10)
	if len(seen) != 1 || seen[0] != 2 {
		t.Fatalf("tap observations = %v, want [2]", seen)
	}
	if len(sinks[4].pkts) != 0 {
		t.Fatal("consumed packet still reached the destination")
	}
}

func TestTransitTapPassThrough(t *testing.T) {
	e := sim.NewEngine(1)
	_, r, sinks := lineWorld(e, 5, 150)
	var seen []int
	for id := 1; id <= 3; id++ {
		id := id
		r.AddTransitTap(id, func(at *netstack.Node, inner *netstack.Packet) bool {
			seen = append(seen, id)
			return false
		})
	}
	e.Schedule(0, func() { r.Send(0, 4, innerPkt(0, 4), nil) })
	e.Run(10)
	if len(seen) != 3 {
		t.Fatalf("taps saw %v, want all of 1,2,3", seen)
	}
	if len(sinks[4].pkts) != 1 {
		t.Fatal("pass-through packet did not reach the destination")
	}
}

func TestLinkBreakTriggersRediscovery(t *testing.T) {
	e := sim.NewEngine(1)
	// Two disjoint paths 0→1→4 and 0→2→4 (diamond). After 1 dies, a
	// retry must deliver via 2.
	pts := []geom.Point{
		{X: 0, Y: 0},      // 0
		{X: 140, Y: 60},   // 1
		{X: 140, Y: -60},  // 2
		{X: 1000, Y: 500}, // 3 (bystander, far)
		{X: 280, Y: 0},    // 4
	}
	net := netstack.New(e, netstack.Config{
		N: 5, Side: 2000, Mobility: mobility.NewStatic(pts), Stack: netstack.StackIdeal,
	})
	r := New(net, Config{})
	s := &sink{}
	net.Node(4).Register(testProto, s)
	e.Schedule(0, func() { r.Send(0, 4, innerPkt(0, 4), nil) })
	e.Run(10)
	if len(s.pkts) != 1 {
		t.Fatal("initial delivery failed")
	}
	// Kill whichever relay the route uses; then send again.
	e.Schedule(0, func() {
		if r.HasRoute(0, 4) {
			// invalidate by killing both possible relays' one: find which
			// next hop is in use by sending after failing node 1.
			net.Fail(1)
		}
	})
	var okResult *bool
	e.Schedule(1, func() {
		r.Send(0, 4, innerPkt(0, 4), func(ok bool) { okResult = &ok })
	})
	e.Run(60)
	if len(s.pkts) != 2 {
		t.Fatalf("delivery after link break: got %d packets, want 2", len(s.pkts))
	}
	if okResult == nil || !*okResult {
		t.Fatal("retry after link break should eventually succeed")
	}
}

func TestGridAnyPairReachable(t *testing.T) {
	e := sim.NewEngine(5)
	// 5x5 grid, 140 m spacing: richly connected.
	var pts []geom.Point
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			pts = append(pts, geom.Point{X: float64(x) * 140, Y: float64(y) * 140})
		}
	}
	net := netstack.New(e, netstack.Config{
		N: 25, Side: 700, Mobility: mobility.NewStatic(pts), Stack: netstack.StackIdeal,
	})
	r := New(net, Config{})
	s := make([]*sink, 25)
	for i := range s {
		s[i] = &sink{}
		net.Node(i).Register(testProto, s[i])
	}
	pairs := [][2]int{{0, 24}, {4, 20}, {12, 0}, {7, 23}, {24, 0}}
	for i, pr := range pairs {
		pr := pr
		e.Schedule(float64(i), func() { r.Send(pr[0], pr[1], innerPkt(pr[0], pr[1]), nil) })
	}
	e.Run(30)
	for _, pr := range pairs {
		found := false
		for _, pkt := range s[pr[1]].pkts {
			if pkt.Src == pr[0] {
				found = true
			}
		}
		if !found {
			t.Fatalf("pair %v not delivered", pr)
		}
	}
}

func TestMobileDeliveryWithSINRStack(t *testing.T) {
	// End-to-end smoke test on the full-fidelity stack: DCF MAC + SINR
	// medium + heartbeat neighbors + waypoint mobility.
	e := sim.NewEngine(9)
	mob := mobility.NewWaypoint(e.NewStream(), 30, mobility.WaypointConfig{
		MinSpeed: 0.5, MaxSpeed: 2, Pause: 30, Side: 800,
	}, nil)
	net := netstack.New(e, netstack.Config{
		N: 30, Side: 800, Mobility: mob, Stack: netstack.StackSINR,
	})
	r := New(net, Config{})
	s := make([]*sink, 30)
	for i := range s {
		s[i] = &sink{}
		net.Node(i).Register(testProto, s[i])
	}
	delivered := 0
	for i := 0; i < 10; i++ {
		src, dst := i, 29-i
		e.Schedule(30+float64(i)*2, func() { r.Send(src, dst, innerPkt(src, dst), nil) })
	}
	e.Run(120)
	for i := 0; i < 10; i++ {
		for _, pkt := range s[29-i].pkts {
			if pkt.Src == i {
				delivered++
				break
			}
		}
	}
	if delivered < 7 {
		t.Fatalf("only %d/10 routed packets delivered on the SINR stack", delivered)
	}
	if net.Stats().Get(netstack.CtrRoutingMsgs) == 0 {
		t.Fatal("no routing overhead counted")
	}
}

func TestOracleMultihopDelivery(t *testing.T) {
	e := sim.NewEngine(1)
	pts := make([]geom.Point, 6)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 150, Y: 0}
	}
	net := netstack.New(e, netstack.Config{
		N: 6, Side: 1000, Mobility: mobility.NewStatic(pts), Stack: netstack.StackIdeal,
	})
	o := NewOracle(net)
	s := &sink{}
	net.Node(5).Register(testProto, s)
	var okResult *bool
	e.Schedule(0, func() { o.Send(0, 5, innerPkt(0, 5), func(ok bool) { okResult = &ok }) })
	e.Run(5)
	if len(s.pkts) != 1 || s.pkts[0].Hops != 5 {
		t.Fatalf("oracle delivery: %d pkts", len(s.pkts))
	}
	if okResult == nil || !*okResult {
		t.Fatal("oracle send not ok")
	}
	// Zero routing control overhead — the whole point of the baseline.
	if net.Stats().Get(netstack.CtrRoutingMsgs) != 0 {
		t.Fatal("oracle produced routing control messages")
	}
	if !o.HasRoute(0, 5) {
		t.Fatal("HasRoute false on a connected line")
	}
}

func TestOracleScopedAndUnreachable(t *testing.T) {
	e := sim.NewEngine(1)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 300, Y: 0}, {X: 450, Y: 0}, {X: 5000, Y: 0}}
	net := netstack.New(e, netstack.Config{
		N: 5, Side: 6000, Mobility: mobility.NewStatic(pts), Stack: netstack.StackIdeal,
	})
	o := NewOracle(net)
	s := &sink{}
	net.Node(3).Register(testProto, s)
	var scoped, far *bool
	e.Schedule(0, func() {
		o.SendScoped(0, 3, innerPkt(0, 3), 2, func(ok bool) { scoped = &ok }) // 3 hops away
		o.Send(0, 4, innerPkt(0, 4), func(ok bool) { far = &ok })             // disconnected
	})
	e.Run(5)
	if scoped == nil || *scoped {
		t.Fatal("scoped send beyond TTL should fail")
	}
	if far == nil || *far {
		t.Fatal("send to a disconnected node should fail")
	}
	if len(s.pkts) != 0 {
		t.Fatal("scoped packet escaped its TTL")
	}
	if o.DataDrops == 0 {
		t.Fatal("drops not counted")
	}
}

func TestOracleTransitTap(t *testing.T) {
	e := sim.NewEngine(1)
	pts := make([]geom.Point, 4)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 150, Y: 0}
	}
	net := netstack.New(e, netstack.Config{
		N: 4, Side: 700, Mobility: mobility.NewStatic(pts), Stack: netstack.StackIdeal,
	})
	o := NewOracle(net)
	s := &sink{}
	net.Node(3).Register(testProto, s)
	var seen []int
	o.AddTransitTap(1, func(at *netstack.Node, inner *netstack.Packet) bool {
		seen = append(seen, at.ID())
		return false
	})
	o.AddTransitTap(2, func(at *netstack.Node, inner *netstack.Packet) bool {
		seen = append(seen, at.ID())
		return true // consume
	})
	e.Schedule(0, func() { o.Send(0, 3, innerPkt(0, 3), nil) })
	e.Run(5)
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("taps saw %v", seen)
	}
	if len(s.pkts) != 0 {
		t.Fatal("consumed packet reached destination")
	}
}

func TestOracleAvoidsDeadNodes(t *testing.T) {
	e := sim.NewEngine(1)
	// Diamond: 0-(1|2)-3; kill 1, oracle must route via 2.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 140, Y: 60}, {X: 140, Y: -60}, {X: 280, Y: 0}}
	net := netstack.New(e, netstack.Config{
		N: 4, Side: 600, Mobility: mobility.NewStatic(pts), Stack: netstack.StackIdeal,
	})
	o := NewOracle(net)
	net.Fail(1)
	s := &sink{}
	net.Node(3).Register(testProto, s)
	e.Schedule(0, func() { o.Send(0, 3, innerPkt(0, 3), nil) })
	e.Run(5)
	if len(s.pkts) != 1 {
		t.Fatal("oracle failed to route around a dead node")
	}
}

func TestIntermediateNodeReplies(t *testing.T) {
	// After 0→4 establishes routes, node 1 holds a fresh route to 4; a
	// discovery from... 0 again would reuse. Instead: 0 discovers 4, then
	// we expire nothing and let node 0 re-discover after invalidating
	// only its own entry — the intermediate node's cached route answers
	// without the flood reaching the destination's neighborhood.
	e := sim.NewEngine(1)
	net, r, sinks := lineWorld(e, 6, 150)
	e.Schedule(0, func() { r.Send(0, 5, innerPkt(0, 5), nil) })
	e.Run(10)
	if len(sinks[5].pkts) != 1 {
		t.Fatal("setup delivery failed")
	}
	// Invalidate the origin's route only (simulate local expiry).
	r.nodes[0].routes[5].valid = false
	before := net.Stats().Get(netstack.CtrRoutingMsgs)
	e.Schedule(0, func() { r.Send(0, 5, innerPkt(0, 5), nil) })
	e.Run(20)
	if len(sinks[5].pkts) != 2 {
		t.Fatal("redelivery failed")
	}
	// The re-discovery should be answered by an intermediate node's
	// cached route: far cheaper than the first full expanding-ring.
	cost := net.Stats().Get(netstack.CtrRoutingMsgs) - before
	if cost > 12 {
		t.Fatalf("re-discovery cost %d routing msgs; intermediate reply should keep it small", cost)
	}
}

func TestRouteExpiry(t *testing.T) {
	e := sim.NewEngine(1)
	_, r, sinks := lineWorld(e, 4, 150)
	e.Schedule(0, func() { r.Send(0, 3, innerPkt(0, 3), nil) })
	e.Run(10)
	if !r.HasRoute(0, 3) {
		t.Fatal("no route after delivery")
	}
	// Idle past ActiveRouteTimeout: the route must expire.
	e.Run(e.Now() + DefaultConfig().ActiveRouteTimeout + 5)
	if r.HasRoute(0, 3) {
		t.Fatal("route did not expire")
	}
	// But it still works again on demand.
	e.Schedule(0, func() { r.Send(0, 3, innerPkt(0, 3), nil) })
	e.Run(e.Now() + 20)
	if len(sinks[3].pkts) != 2 {
		t.Fatal("post-expiry delivery failed")
	}
}

func TestRouteRefreshOnUse(t *testing.T) {
	e := sim.NewEngine(1)
	_, r, sinks := lineWorld(e, 4, 150)
	timeout := DefaultConfig().ActiveRouteTimeout
	e.Schedule(0, func() { r.Send(0, 3, innerPkt(0, 3), nil) })
	e.Run(10)
	// Keep using the route at 60% of the timeout: it must never expire.
	for i := 0; i < 5; i++ {
		e.Schedule(timeout*0.6, func() { r.Send(0, 3, innerPkt(0, 3), nil) })
		e.Run(e.Now() + timeout*0.6 + 2)
	}
	if len(sinks[3].pkts) != 6 {
		t.Fatalf("delivered %d, want 6", len(sinks[3].pkts))
	}
	if !r.HasRoute(0, 3) {
		t.Fatal("actively used route expired")
	}
}

func TestRERRPropagatesUpstream(t *testing.T) {
	// 0→1→2→3; node 3 dies; node 2's send fails → RERR reaches 1 and 0,
	// invalidating their routes to 3.
	e := sim.NewEngine(1)
	net, r, sinks := lineWorld(e, 4, 150)
	e.Schedule(0, func() { r.Send(0, 3, innerPkt(0, 3), nil) })
	e.Run(3)
	if len(sinks[3].pkts) != 1 {
		t.Fatal("setup delivery failed")
	}
	net.Fail(3)
	// Sending again while routes are still fresh: the data dies at node
	// 2, which broadcasts RERR; the origin-side retry re-discovers,
	// fails, and reports.
	var okResult *bool
	e.Schedule(1, func() { r.Send(0, 3, innerPkt(0, 3), func(ok bool) { okResult = &ok }) })
	e.Run(e.Now() + 60)
	if r.HasRoute(1, 3) || r.HasRoute(2, 3) {
		t.Fatal("stale routes to the dead node survived the RERR")
	}
	_ = okResult // the first hop may still succeed (failure is downstream)
	if r.DataDrops == 0 {
		t.Fatal("no data drop recorded at the break")
	}
}

func TestNoRetryDataOnLinkBreak(t *testing.T) {
	e := sim.NewEngine(1)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 150, Y: 0}}
	net := netstack.New(e, netstack.Config{
		N: 2, Side: 400, Mobility: mobility.NewStatic(pts), Stack: netstack.StackIdeal,
	})
	cfg := DefaultConfig()
	cfg.RetryDataOnLinkBreak = false
	r := New(net, cfg)
	// Establish a route, then kill the destination: the send must fail
	// without a re-discovery attempt.
	s := &sink{}
	net.Node(1).Register(testProto, s)
	e.Schedule(0, func() { r.Send(0, 1, innerPkt(0, 1), nil) })
	e.Run(5)
	net.Fail(1)
	var okResult *bool
	discBefore := r.Discoveries
	e.Schedule(0, func() { r.Send(0, 1, innerPkt(0, 1), func(ok bool) { okResult = &ok }) })
	e.Run(e.Now() + 30)
	if okResult == nil || *okResult {
		t.Fatal("send to dead neighbor should fail")
	}
	if r.Discoveries != discBefore {
		t.Fatal("re-discovery attempted despite RetryDataOnLinkBreak=false")
	}
}

func TestSequenceNumberFreshness(t *testing.T) {
	e := sim.NewEngine(1)
	_, r, _ := lineWorld(e, 3, 150)
	st := r.nodes[0]
	// Install a route with seq 10, then offer a stale seq-5 update: it
	// must be rejected; a fresh seq-11 update must win even with more hops.
	r.updateRoute(st, 2, 1, 2, 10, true)
	r.updateRoute(st, 2, 1, 1, 5, true)
	if st.routes[2].seq != 10 {
		t.Fatal("stale sequence number overwrote a fresher route")
	}
	r.updateRoute(st, 2, 1, 7, 11, true)
	if st.routes[2].seq != 11 || st.routes[2].hops != 7 {
		t.Fatal("fresher sequence number rejected")
	}
	// Equal seq with fewer hops improves the route.
	r.updateRoute(st, 2, 1, 3, 11, true)
	if st.routes[2].hops != 3 {
		t.Fatal("shorter same-seq route rejected")
	}
}
