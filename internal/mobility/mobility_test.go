package mobility

import (
	"math"
	"math/rand"
	"testing"

	"probquorum/internal/geom"
)

func TestStatic(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	m := NewStatic(pts)
	pts[0] = geom.Point{X: 9, Y: 9} // model must have copied
	if got := m.Position(0, 100); got != (geom.Point{X: 1, Y: 2}) {
		t.Fatalf("Position(0) = %v", got)
	}
	if m.MaxSpeed() != 0 {
		t.Fatal("static MaxSpeed should be 0")
	}
	m.SetPosition(1, geom.Point{X: 7, Y: 7})
	if got := m.Position(1, 0); got != (geom.Point{X: 7, Y: 7}) {
		t.Fatalf("SetPosition ignored: %v", got)
	}
}

func defaultWaypoint(seed int64, n int) *Waypoint {
	rng := rand.New(rand.NewSource(seed))
	return NewWaypoint(rng, n, WaypointConfig{
		MinSpeed: 0.5, MaxSpeed: 2, Pause: 30, Side: 1000,
	}, nil)
}

func TestWaypointStaysInArea(t *testing.T) {
	w := defaultWaypoint(1, 20)
	for id := 0; id < 20; id++ {
		for ti := 0; ti <= 2000; ti += 7 {
			p := w.Position(id, float64(ti))
			if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 1000 {
				t.Fatalf("node %d left area at t=%d: %v", id, ti, p)
			}
		}
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	w := defaultWaypoint(2, 10)
	const dt = 0.5
	for id := 0; id < 10; id++ {
		prev := w.Position(id, 0)
		for ti := dt; ti < 500; ti += dt {
			cur := w.Position(id, ti)
			speed := geom.Dist(prev, cur) / dt
			if speed > w.MaxSpeed()+1e-9 {
				t.Fatalf("node %d moved at %v m/s > max %v", id, speed, w.MaxSpeed())
			}
			prev = cur
		}
	}
}

func TestWaypointContinuity(t *testing.T) {
	w := defaultWaypoint(3, 5)
	for id := 0; id < 5; id++ {
		prev := w.Position(id, 0)
		for ti := 0.01; ti < 300; ti += 0.01 {
			cur := w.Position(id, ti)
			if geom.Dist(prev, cur) > w.MaxSpeed()*0.01+1e-9 {
				t.Fatalf("discontinuity for node %d at t=%v", id, ti)
			}
			prev = cur
		}
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	w := defaultWaypoint(4, 10)
	moved := 0
	for id := 0; id < 10; id++ {
		a := w.Position(id, 0)
		b := w.Position(id, 600)
		if geom.Dist(a, b) > 1 {
			moved++
		}
	}
	if moved < 8 {
		t.Fatalf("only %d/10 nodes moved over 600s", moved)
	}
}

func TestWaypointDeterminism(t *testing.T) {
	a := defaultWaypoint(5, 10)
	b := defaultWaypoint(5, 10)
	for id := 0; id < 10; id++ {
		for ti := 0.0; ti < 400; ti += 13.7 {
			pa, pb := a.Position(id, ti), b.Position(id, ti)
			if pa != pb {
				t.Fatalf("same-seed models diverge: node %d t=%v: %v vs %v", id, ti, pa, pb)
			}
		}
	}
}

func TestWaypointPauseRespected(t *testing.T) {
	// With a huge pause, the node should sit still at its start initially.
	rng := rand.New(rand.NewSource(6))
	start := []geom.Point{{X: 100, Y: 100}}
	w := NewWaypoint(rng, 1, WaypointConfig{MinSpeed: 1, MaxSpeed: 1, Pause: 1e6, Side: 1000}, start)
	if got := w.Position(0, 1000); got != (geom.Point{X: 100, Y: 100}) {
		t.Fatalf("node moved during pause: %v", got)
	}
}

func TestWaypointZeroPause(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := NewWaypoint(rng, 3, WaypointConfig{MinSpeed: 1, MaxSpeed: 2, Pause: 0, Side: 100}, nil)
	// Just exercise long-horizon leg generation without pause.
	for id := 0; id < 3; id++ {
		p := w.Position(id, 5000)
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatal("NaN position")
		}
	}
}

func TestWaypointRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero MinSpeed")
		}
	}()
	rng := rand.New(rand.NewSource(8))
	NewWaypoint(rng, 1, WaypointConfig{MinSpeed: 0, MaxSpeed: 2, Side: 100}, nil)
}
