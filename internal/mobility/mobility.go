// Package mobility provides node movement models for the simulator: static
// placement and the random waypoint model used throughout the paper's
// evaluation (Section 2.4: speeds 0.5–2 m/s by default, 30 s pause).
//
// Positions are computed analytically from per-node movement "legs", so
// querying a position is cheap and no per-node movement events are needed.
// Queries must be issued with nondecreasing time per node, which holds for a
// discrete-event simulation.
package mobility

import (
	"math/rand"

	"probquorum/internal/geom"
)

// Model yields node positions over time.
type Model interface {
	// Position returns node id's position at simulation time t (seconds).
	// t must be nondecreasing across calls for the same id.
	Position(id int, t float64) geom.Point
	// MaxSpeed returns an upper bound on any node's speed in m/s, used to
	// pad spatial-index query radii against staleness. Zero for static.
	MaxSpeed() float64
}

// Static places nodes at fixed positions.
type Static struct {
	pts []geom.Point
}

// NewStatic builds a static model over the given positions. The slice is
// copied.
func NewStatic(pts []geom.Point) *Static {
	cp := make([]geom.Point, len(pts))
	copy(cp, pts)
	return &Static{pts: cp}
}

// NewStaticUniform places n nodes uniformly at random in a side×side square.
func NewStaticUniform(rng *rand.Rand, n int, side float64) *Static {
	return &Static{pts: geom.UniformPoints(rng, n, side)}
}

// Position implements Model.
func (s *Static) Position(id int, _ float64) geom.Point { return s.pts[id] }

// MaxSpeed implements Model.
func (s *Static) MaxSpeed() float64 { return 0 }

// SetPosition moves a node (used by churn experiments when a joining node is
// placed).
func (s *Static) SetPosition(id int, p geom.Point) { s.pts[id] = p }

// WaypointConfig parameterizes the random waypoint model.
type WaypointConfig struct {
	// MinSpeed and MaxSpeed bound the uniformly chosen leg speed, m/s.
	MinSpeed, MaxSpeed float64
	// Pause is the mean pause duration at each waypoint, seconds. The
	// actual pause is uniform in [0, 2·Pause] so the mean matches the
	// paper's "average pause time of 30 seconds".
	Pause float64
	// Side is the deployment area side length, meters.
	Side float64
}

// leg is one segment of waypoint movement: the node rests at from until
// depart, then travels to dest arriving at arrive.
type leg struct {
	from, dest     geom.Point
	depart, arrive float64
}

// Waypoint implements the random waypoint model. Each node independently
// picks a destination uniformly in the area and a speed uniformly in
// [MinSpeed, MaxSpeed], travels there in a straight line, pauses, and
// repeats.
type Waypoint struct {
	cfg  WaypointConfig
	rngs []*rand.Rand
	legs []leg
}

// NewWaypoint creates a waypoint model for n nodes with initial positions
// start (uniform placement if nil). rng seeds the per-node streams.
func NewWaypoint(rng *rand.Rand, n int, cfg WaypointConfig, start []geom.Point) *Waypoint {
	if cfg.MaxSpeed < cfg.MinSpeed {
		panic("mobility: MaxSpeed < MinSpeed")
	}
	if cfg.MinSpeed <= 0 {
		panic("mobility: MinSpeed must be positive (zero speed makes waypoint legs never end)")
	}
	if start == nil {
		start = geom.UniformPoints(rng, n, cfg.Side)
	}
	w := &Waypoint{
		cfg:  cfg,
		rngs: make([]*rand.Rand, n),
		legs: make([]leg, n),
	}
	for i := 0; i < n; i++ {
		w.rngs[i] = rand.New(rand.NewSource(rng.Int63()))
		w.legs[i] = w.nextLeg(i, start[i], 0)
	}
	return w
}

// nextLeg generates the leg that begins (with a pause) at position p at
// time t.
func (w *Waypoint) nextLeg(id int, p geom.Point, t float64) leg {
	rng := w.rngs[id]
	pause := 0.0
	if w.cfg.Pause > 0 {
		pause = rng.Float64() * 2 * w.cfg.Pause
	}
	dest := geom.Point{X: rng.Float64() * w.cfg.Side, Y: rng.Float64() * w.cfg.Side}
	speed := w.cfg.MinSpeed + rng.Float64()*(w.cfg.MaxSpeed-w.cfg.MinSpeed)
	depart := t + pause
	travel := geom.Dist(p, dest) / speed
	return leg{from: p, dest: dest, depart: depart, arrive: depart + travel}
}

// Position implements Model.
func (w *Waypoint) Position(id int, t float64) geom.Point {
	l := &w.legs[id]
	for t >= l.arrive {
		w.legs[id] = w.nextLeg(id, l.dest, l.arrive)
		l = &w.legs[id]
	}
	if t <= l.depart {
		return l.from
	}
	frac := (t - l.depart) / (l.arrive - l.depart)
	return geom.Point{
		X: l.from.X + (l.dest.X-l.from.X)*frac,
		Y: l.from.Y + (l.dest.Y-l.from.Y)*frac,
	}
}

// MaxSpeed implements Model.
func (w *Waypoint) MaxSpeed() float64 { return w.cfg.MaxSpeed }
