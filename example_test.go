package probquorum_test

import (
	"fmt"

	"probquorum"
)

// The basic advertise/lookup flow on the paper's favoured asymmetric mix:
// RANDOM advertise quorum (2√n members via routing), UNIQUE-PATH lookup
// quorum (1.15√n members via a self-avoiding random walk).
func Example() {
	c := probquorum.NewCluster(probquorum.ClusterConfig{Nodes: 100, Seed: 42})
	c.AdvertiseWait(3, "printer", "room-217")
	res := c.LookupWait(42, "printer")
	fmt.Println(res.Hit, res.Value)
	// Output: true room-217
}

// Quorum sizing from Corollary 5.3: for a 0.9 intersection probability in
// an 800-node network, |Qa|·|Qℓ| must reach n·ln(1/ε) ≈ 2.3n.
func ExampleSizeForEpsilon() {
	qa, ql := probquorum.SizeForEpsilon(800, 0.1, 1)
	fmt.Println(qa, ql, qa*ql >= 1842)
	// Output: 43 43 true
}

// Lemma 5.6's optimal asymmetry: with lookups 10× more frequent than
// advertisements and advertise contacts 5× costlier per node, the lookup
// quorum should be half the advertise quorum.
func ExampleOptimalSizeRatio() {
	fmt.Println(probquorum.OptimalSizeRatio(10, 5, 1))
	// Output: 0.5
}

// The mix-and-match bound of Lemma 5.2 for the paper's Fig. 16 setting.
func ExampleNonIntersectProb() {
	miss := probquorum.NonIntersectProb(800, 56, 33)
	fmt.Printf("%.2f\n", 1-miss)
	// Output: 0.90
}

// Shared registers (Section 10): install the version-aware Merge, write
// from one node, read the latest version from another.
func ExampleCluster_NewRegister() {
	cfg := probquorum.DefaultQuorumConfig(100)
	cfg.Merge = probquorum.RegisterMerge
	c := probquorum.NewCluster(probquorum.ClusterConfig{Nodes: 100, Seed: 7, Quorum: cfg})
	reg := c.NewRegister("leader", false)

	done := false
	reg.Write(5, "node-5", func(v probquorum.Versioned, _ int) { done = true })
	for !done {
		c.RunFor(1)
	}
	done = false
	reg.Read(80, func(r probquorum.ReadResult) {
		fmt.Println(r.OK, r.Value, r.Version)
		done = true
	})
	for !done {
		c.RunFor(1)
	}
	// Output: true node-5 1
}
